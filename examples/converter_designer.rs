//! Bottom-up converter design with the physics loss model: choose the
//! device technology and switching frequency for each topology, and see
//! the on-time feasibility wall the paper's §III describes.
//!
//! ```sh
//! cargo run --example converter_designer
//! ```

use vertical_power_delivery::converters::PhysicsDesign;
use vertical_power_delivery::devices::{PowerTransistor, Semiconductor};
use vertical_power_delivery::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v_in = Volts::new(48.0);
    let v_out = Volts::new(1.0);
    let i_rated = Amps::new(30.0);

    println!("=== device technology figure of merit at 48 V ===\n");
    for m in [Semiconductor::Si, Semiconductor::GaN] {
        println!(
            "  {m}: R_on·A = {:.1} mΩ·mm², FOM(R·Qg) = {:.2e} Ω·C",
            m.specific_on_resistance(v_in) * 1e9,
            m.figure_of_merit(v_in)
        );
    }

    println!("\n=== loss-optimal switch sizing (GaN, 1 MHz, DSCH cell) ===\n");
    let f = Hertz::from_megahertz(1.0);
    let area = PowerTransistor::optimal_area(
        Semiconductor::GaN,
        Volts::new(16.0), // DSCH switch stress: V_in / 3
        Amps::new(15.0),
        0.0625,
        f,
        Volts::new(16.0),
    )?;
    let fet = PowerTransistor::new(Semiconductor::GaN, Volts::new(16.0), area)?;
    println!(
        "  optimal die area {:.2} mm² -> R_on {:.2} mΩ, Q_g {:.1} nC",
        area.as_square_millimeters(),
        fet.r_on().as_milliohms(),
        fet.q_g().value() * 1e9
    );

    println!("\n=== per-topology design table ===\n");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>16}",
        "topology", "f_max(Si)", "f_max(GaN)", "η@20A (GaN, 1MHz)", "best f for GaN"
    );
    for kind in [
        VrTopologyKind::Dpmih,
        VrTopologyKind::Dsch,
        VrTopologyKind::ThreeLevelHybridDickson,
    ] {
        let fmax = |m| PhysicsDesign::max_feasible_frequency(kind, m, v_in, v_out).value() / 1e6;
        let eta_at = |f_mhz: f64| -> Option<f64> {
            PhysicsDesign::new(
                kind,
                Semiconductor::GaN,
                Hertz::from_megahertz(f_mhz),
                v_in,
                v_out,
                i_rated,
            )
            .ok()
            .and_then(|d| d.efficiency(Amps::new(20.0)).ok())
            .map(|e| e.percent())
        };
        // Scan a small frequency grid for the efficiency optimum.
        let best = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
            .iter()
            .filter_map(|&f| eta_at(f).map(|e| (f, e)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        println!(
            "{:<8} {:>8.1} MHz {:>10.1} MHz {:>13} {:>18}",
            kind.to_string(),
            fmax(Semiconductor::Si),
            fmax(Semiconductor::GaN),
            eta_at(1.0).map_or("infeasible".into(), |e| format!("{e:.1}%")),
            best.map_or("-".into(), |(f, e)| format!("{f} MHz ({e:.1}%)")),
        );
    }

    println!(
        "\nthe 3LHD's Dickson front (10x internal step-down) lifts the on-time from\n\
         ~2% to ~20%, so it tolerates ~5x higher switching frequency — the §III\n\
         trade against its larger switch count."
    );
    Ok(())
}
