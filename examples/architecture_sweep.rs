//! Design-space sweeps: how the architecture choice shifts with die
//! current density, and which intermediate bus voltage the two-stage
//! architecture should use.
//!
//! ```sh
//! cargo run --example architecture_sweep
//! ```

use vertical_power_delivery::core::{
    best_bus_voltage, reference_crossover_power, sweep_bus_voltage, sweep_current_density,
    sweep_pol_power,
};
use vertical_power_delivery::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let opts = AnalysisOptions::default();

    println!("=== total loss vs. die current density (1 kW fixed) ===\n");
    let densities = [0.5, 1.0, 1.5, 2.0, 3.0];
    println!(
        "{:>10} | {:>10} | {:>10} | {:>10}",
        "A/mm²", "A0", "A1/DSCH", "A2/DSCH"
    );
    let a0 = sweep_current_density(
        &densities,
        Architecture::Reference,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    );
    let a1 = sweep_current_density(
        &densities,
        Architecture::InterposerPeriphery,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    );
    let a2 = sweep_current_density(
        &densities,
        Architecture::InterposerEmbedded,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    );
    for i in 0..densities.len() {
        let cell = |r: &Result<vertical_power_delivery::core::ArchitectureReport, CoreError>| {
            r.as_ref()
                .map(|rep| format!("{:>9.1}%", rep.loss_percent()))
                .unwrap_or_else(|_| "  infeas.".to_owned())
        };
        println!(
            "{:>10} | {} | {} | {}",
            densities[i],
            cell(&a0[i].1),
            cell(&a1[i].1),
            cell(&a2[i].1)
        );
    }

    println!("\n=== total loss vs. POL power (2 A/mm² fixed) ===\n");
    let powers = [100.0, 250.0, 500.0, 750.0, 1000.0, 1500.0];
    println!("{:>10} | {:>10} | {:>10}", "W", "A0", "A1/DSCH");
    let p0 = sweep_pol_power(
        &powers,
        Architecture::Reference,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    );
    let p1 = sweep_pol_power(
        &powers,
        Architecture::InterposerPeriphery,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    );
    for i in 0..powers.len() {
        let cell = |r: &Result<vertical_power_delivery::core::ArchitectureReport, CoreError>| {
            r.as_ref()
                .map(|rep| format!("{:>9.1}%", rep.loss_percent()))
                .unwrap_or_else(|_| "  infeas.".to_owned())
        };
        println!(
            "{:>10} | {} | {}",
            powers[i],
            cell(&p0[i].1),
            cell(&p1[i].1)
        );
    }
    let grid: Vec<f64> = (1..=30).map(|k| 50.0 * f64::from(k)).collect();
    if let Some(p) = reference_crossover_power(
        &grid,
        Architecture::InterposerPeriphery,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    ) {
        println!("\ncrossover: PCB conversion stops being competitive above ~{p:.0} W");
    }

    println!("\n=== two-stage bus-voltage sweep ===\n");
    let buses: Vec<Volts> = [3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0]
        .iter()
        .map(|&v| Volts::new(v))
        .collect();
    for (bus, outcome) in sweep_bus_voltage(&buses, &spec, &calib, &opts) {
        match outcome {
            Ok(r) => {
                let bar = "#".repeat((r.loss_percent() * 2.0) as usize);
                println!("  {:>5.0} V | {bar} {:.1}%", bus.value(), r.loss_percent());
            }
            Err(e) => println!("  {:>5.0} V | infeasible: {e}", bus.value()),
        }
    }
    if let Some((best, pct)) = best_bus_voltage(&buses, &spec, &calib, &opts) {
        println!(
            "\noptimal intermediate bus: {:.0} V at {pct:.1}% total loss",
            best.value()
        );
        println!(
            "(the paper evaluates 12 V and 6 V; the sweep shows where the optimum\n\
             actually falls under this calibration)"
        );
    }
    Ok(())
}
