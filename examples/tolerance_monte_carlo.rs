//! Monte-Carlo tolerance analysis: are the paper's conclusions robust
//! to ±20% uncertainty in every calibrated resistance and ±10% in the
//! converter curves?
//!
//! ```sh
//! cargo run --example tolerance_monte_carlo
//! ```

use vertical_power_delivery::core::{run_tolerance, McSettings};
use vertical_power_delivery::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let settings = McSettings {
        samples: 500,
        resistance_tolerance: 0.20,
        conversion_tolerance: 0.10,
        seed: 42,
        ..McSettings::default()
    };

    println!(
        "{} samples, ±{:.0}% resistances, ±{:.0}% conversion loss\n",
        settings.samples,
        settings.resistance_tolerance * 100.0,
        settings.conversion_tolerance * 100.0
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "config", "mean", "std", "p5", "p95", "max"
    );

    let configs = [
        (Architecture::Reference, "A0"),
        (Architecture::InterposerPeriphery, "A1/DSCH"),
        (Architecture::InterposerEmbedded, "A2/DSCH"),
        (
            Architecture::TwoStage {
                bus: Volts::new(12.0),
            },
            "A3@12V",
        ),
    ];
    let mut summaries = Vec::new();
    for (arch, label) in configs {
        let s = run_tolerance(arch, VrTopologyKind::Dsch, &spec, &calib, &settings)?;
        println!(
            "{:<10} {:>7.1}% {:>7.2} {:>7.1}% {:>7.1}% {:>7.1}%",
            label, s.mean, s.std_dev, s.p5, s.p95, s.max
        );
        summaries.push((label, s));
    }

    // Distribution shapes: one line per configuration.
    println!("\ndistribution shape (p5 … p95, 12 buckets):");
    for (label, s) in &summaries {
        // Approximate the density by bucketing a normal-ish fan between
        // the summary quantiles (cheap visualization without storing
        // every sample).
        let series: Vec<f64> = (0..12)
            .map(|k| {
                let t = k as f64 / 11.0;
                let x = s.p5 + t * (s.p95 - s.p5);
                (-(x - s.mean) * (x - s.mean) / (2.0 * s.std_dev * s.std_dev).max(1e-12)).exp()
            })
            .collect();
        println!(
            "  {:<10} {}  [{:.1}% … {:.1}%]",
            label,
            vertical_power_delivery::report::sparkline(&series),
            s.p5,
            s.p95
        );
    }

    let a0 = &summaries[0].1;
    let a1 = &summaries[1].1;
    println!(
        "\nrobustness check: A0's best case ({:.1}%) still loses to A1's worst case\n\
         ({:.1}%) -> the paper's headline conclusion survives the tolerances: {}",
        a0.min,
        a1.max,
        if a0.min > a1.max { "YES" } else { "NO" }
    );
    Ok(())
}
