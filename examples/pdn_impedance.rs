//! PDN impedance profiles: why an integrated regulator also wins the
//! AC battle. Prints a Bode-style ASCII plot of |Z(f)| at the die for
//! the reference and vertical architectures.
//!
//! ```sh
//! cargo run --example pdn_impedance
//! ```

use vertical_power_delivery::circuit::log_sweep;
use vertical_power_delivery::core::{target_impedance, PdnModel};
use vertical_power_delivery::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SystemSpec::paper_default();
    let zt = target_impedance(&spec, 0.05, 0.25);
    println!("target impedance: {zt}  (50 mV ripple budget / 250 A load step)\n");

    let freqs = log_sweep(Hertz::from_kilohertz(1.0), Hertz::new(1e9), 25);
    for arch in [
        Architecture::Reference,
        Architecture::InterposerPeriphery,
        Architecture::InterposerEmbedded,
    ] {
        let model = PdnModel::for_architecture(arch);
        let profile = model.impedance_profile(&freqs)?;
        println!("{} — |Z(f)| at the die:", arch.name());
        for p in &profile {
            // Log bar: 10 chars per decade above 1 µΩ.
            let z_uohm = p.magnitude() * 1e6;
            let bar_len = (z_uohm.log10() * 10.0).max(0.0) as usize;
            let marker = if p.magnitude() > zt.value() { '!' } else { '#' };
            println!(
                "  {:>9.0} Hz | {} {:.0} µΩ",
                p.frequency.value(),
                String::from(marker).repeat(bar_len.min(70)),
                z_uohm
            );
        }
        let peak = model.peak_impedance()?;
        println!(
            "  peak {} -> {}\n",
            peak,
            if peak.value() <= zt.value() {
                "meets the target"
            } else {
                "violates the target ('!' rows)"
            }
        );
    }
    println!(
        "every '!' row is a frequency band where a load transient of 250 A would\n\
         push the supply outside its 5% ripple budget."
    );
    Ok(())
}
