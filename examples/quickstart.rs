//! Quickstart: analyze one vertical power-delivery architecture for the
//! paper's headline system (48 V → 1 V, 1 kW, 2 A/mm²).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vertical_power_delivery::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's operating point: 1 kW at 1 V (1 kA) on a 500 mm² die.
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();

    println!(
        "system: {} -> {} | {} at the POL | die {:.0} mm²",
        spec.pcb_voltage(),
        spec.pol_voltage(),
        spec.pol_power(),
        spec.die_area().as_square_millimeters()
    );

    // Architecture A1: single-stage DSCH regulators along the die
    // periphery on the interposer.
    let report = analyze(
        Architecture::InterposerPeriphery,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &AnalysisOptions::default(),
    )?;

    println!("\narchitecture: {}", report.architecture.description());
    println!("POL-stage modules: {}", report.stage2_modules);
    println!(
        "per-module load: {:.1} A … {:.1} A (mean {:.1} A)",
        report.sharing.min().value(),
        report.sharing.max().value(),
        report.sharing.mean().value()
    );

    println!("\nloss breakdown (% of 1 kW):");
    for s in report.breakdown.segments() {
        println!(
            "  {:<28} {:>8.2} W  ({:>5.2}%)",
            s.name,
            s.power.value(),
            report.breakdown.percent_of_pol_power(s.power)
        );
    }
    println!(
        "  {:<28} {:>8.2} W  ({:>5.2}%)",
        "TOTAL",
        report.breakdown.total().value(),
        report.loss_percent()
    );
    println!(
        "\nend-to-end delivery efficiency: {}",
        report.breakdown.end_to_end_efficiency()
    );

    // Compare with the traditional PCB-conversion reference.
    let reference = analyze(
        Architecture::Reference,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &AnalysisOptions::default(),
    )?;
    println!(
        "reference (A0) efficiency:      {}  — vertical delivery saves {:.0} W",
        reference.breakdown.end_to_end_efficiency(),
        reference.breakdown.total().value() - report.breakdown.total().value()
    );
    Ok(())
}
