//! Electro-thermal co-design: the temperature cost of putting the
//! regulators under the die, and what an optimized placement buys.
//!
//! ```sh
//! cargo run --example thermal_codesign
//! ```

use vertical_power_delivery::core::{
    electro_thermal, optimize_placement, AnnealSettings, ElectroThermalSettings, PlacementObjective,
};
use vertical_power_delivery::prelude::*;
use vertical_power_delivery::thermal::DeviceTechnology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let opts = AnalysisOptions::default();

    println!("=== thermal penalty of regulator placement (DSCH, 1 kW) ===\n");
    for (arch, label) in [
        (Architecture::InterposerPeriphery, "A1 periphery"),
        (Architecture::InterposerEmbedded, "A2 under-die"),
    ] {
        for tech in [DeviceTechnology::GaN, DeviceTechnology::Si] {
            let settings = ElectroThermalSettings {
                technology: tech,
                ..ElectroThermalSettings::default()
            };
            let r = electro_thermal(arch, VrTopologyKind::Dsch, &spec, &calib, &opts, &settings)?;
            println!(
                "  {label:<13} {tech:?}: worst module {:>3.0} °C, VR loss {:>3.0} W → {:>3.0} W \
                 (+{:.1} W), rating ok: {}",
                r.worst_module_temperature.value(),
                r.nominal_conversion_loss.value(),
                r.derated_conversion_loss.value(),
                r.thermal_penalty().value(),
                r.modules_within_rating
            );
        }
    }

    println!("\n=== hotspot-aware placement (annealed, 48 modules) ===\n");
    let opt = optimize_placement(
        &spec,
        &calib,
        48,
        PlacementObjective::WorstModuleCurrent,
        &AnnealSettings::default(),
    )?;
    println!(
        "  worst module current: {:.1} A (uniform grid) → {:.1} A (annealed), {:.0}% better",
        opt.initial_objective,
        opt.final_objective,
        opt.improvement() * 100.0
    );
    println!(
        "  per-module spread after optimization: {:.1} – {:.1} A",
        opt.report.min().value(),
        opt.report.max().value()
    );

    // Render the placement as a mini-map.
    let n = 25;
    let mut cells = vec![vec!['.'; n]; n];
    for &(x, y) in &opt.sites {
        cells[y][x] = 'V';
    }
    println!("\n  annealed placement ('V' = module; hotspot at the center):");
    for row in cells {
        println!("  {}", row.into_iter().collect::<String>());
    }
    Ok(())
}
