//! The paper's motivating scenario: powering a ~1 kW AI accelerator in
//! a data center. Compares every architecture × topology combination
//! and asks the designer for a recommendation.
//!
//! ```sh
//! cargo run --example datacenter_accelerator
//! ```

use vertical_power_delivery::core::{explore_matrix, recommend};
use vertical_power_delivery::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An H100-class accelerator pushed to the paper's projection:
    // 1 kW, 2 A/mm², fed from a 48 V rack bus.
    let spec = SystemSpec::new(
        Volts::new(48.0),
        Volts::new(1.0),
        Watts::from_kilowatts(1.0),
        CurrentDensity::from_amps_per_square_millimeter(2.0),
    )?;
    let calib = Calibration::paper_default();

    println!("=== full architecture x topology comparison ===\n");
    let entries = explore_matrix(
        &[
            VrTopologyKind::Dpmih,
            VrTopologyKind::Dsch,
            VrTopologyKind::ThreeLevelHybridDickson,
        ],
        &spec,
        &calib,
        &AnalysisOptions::default(),
    );
    for e in &entries {
        let label = format!("{} / {}", e.architecture.name(), e.topology);
        match &e.outcome {
            Ok(r) => println!(
                "  {label:<16} {:>5.1}% loss  (efficiency {}){}",
                r.loss_percent(),
                r.breakdown.end_to_end_efficiency(),
                if r.overloaded {
                    "  [modules beyond rating]"
                } else {
                    ""
                }
            ),
            Err(err) => println!("  {label:<16} infeasible: {err}"),
        }
    }

    println!("\n=== designer recommendation (no overload extrapolation) ===\n");
    let rec = recommend(&spec, &calib);
    for (rank, cand) in rec.ranked.iter().take(3).enumerate() {
        println!("  #{}: {}", rank + 1, cand.rationale);
    }
    println!("\n  rejected configurations:");
    for (arch, topo, err) in &rec.rejected {
        println!("    {} / {topo}: {err}", arch.name());
    }

    if let Some(best) = rec.best() {
        println!(
            "\nchosen: {} with {} — {:.1}% total loss",
            best.architecture.name(),
            best.topology,
            best.report.loss_percent()
        );
    }
    Ok(())
}
