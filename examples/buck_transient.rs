//! Exercises the circuit substrate end to end: a synchronous buck phase
//! (12 V → 1 V, the second stage of the paper's A3@12V) simulated with
//! the backward-Euler transient engine, checked against the textbook
//! ripple formula.
//!
//! ```sh
//! cargo run --example buck_transient
//! ```

use vertical_power_delivery::circuit::{
    transient, Netlist, PwmSchedule, SwitchState, TransientResult, TransientSettings,
};
use vertical_power_delivery::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v_in = 12.0;
    let v_out = 1.0;
    let duty = v_out / v_in;
    let f_sw = Hertz::from_megahertz(2.0);
    let l = Henries::from_nanohenries(150.0);
    let c = Farads::from_microfarads(22.0);
    let r_load = Ohms::from_milliohms(50.0); // 20 A at 1 V

    let mut net = Netlist::new();
    let vin = net.node("vin");
    let sw = net.node("sw");
    let out = net.node("out");
    net.voltage_source(vin, net.ground(), Volts::new(v_in))?;
    let pwm = PwmSchedule::new(f_sw, duty, 0.0)?;
    net.switch(
        vin,
        sw,
        Ohms::from_milliohms(4.0),
        Ohms::new(1e6),
        Some(pwm),
        SwitchState::Off,
    )?;
    net.switch(
        sw,
        net.ground(),
        Ohms::from_milliohms(4.0),
        Ohms::new(1e6),
        Some(pwm.complementary()),
        SwitchState::On,
    )?;
    let l_id = net.inductor(sw, out, l, Amps::ZERO)?;
    net.capacitor(out, net.ground(), c, Volts::ZERO)?;
    net.resistor(out, net.ground(), r_load)?;

    let settings = TransientSettings::new(
        Seconds::from_microseconds(40.0),
        Seconds::from_nanoseconds(0.5),
    )?;
    let result = transient(&net, &settings)?;

    let v_avg = TransientResult::settled_mean(result.voltage(out), 0.25);
    let i_avg = TransientResult::settled_mean(result.current(l_id), 0.25);
    let ripple = TransientResult::settled_ripple(result.current(l_id), 0.25);
    let analytic_ripple = v_out * (1.0 - duty) / (l.value() * f_sw.value());

    println!("synchronous buck {v_in} V -> {v_out} V at {f_sw}, L = {l}, C = {c}");
    println!("  settled output voltage : {v_avg:.4} V (target {v_out} V)");
    println!("  settled inductor current: {i_avg:.2} A (target ~20 A)");
    println!("  simulated current ripple: {ripple:.2} A pp");
    println!("  analytic  current ripple: {analytic_ripple:.2} A pp  (ΔI = V_o(1-D)/(L·f))");
    println!(
        "  agreement: {:.1}%",
        100.0 * (1.0 - (ripple - analytic_ripple).abs() / analytic_ripple)
    );
    Ok(())
}
