//! Switched-capacitor design theory: SSL/FSL output impedance, the
//! soft-charging advantage, and passive sizing — §III of the paper in
//! executable form.
//!
//! ```sh
//! cargo run --example sc_theory
//! ```

use vertical_power_delivery::converters::{
    frequency_for_inductance, size_passives, RippleSpec, ScConverterModel,
};
use vertical_power_delivery::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c_fly = Farads::from_microfarads(2.0);
    let r_sw = Ohms::from_milliohms(5.0);

    println!("=== SC output impedance: 8:1 series-parallel vs. Dickson ===\n");
    let sp = ScConverterModel::series_parallel(8, c_fly, r_sw)?;
    let dickson = ScConverterModel::dickson(8, c_fly, r_sw)?;
    let soft = ScConverterModel::series_parallel(8, c_fly, r_sw)?.soft_charged();
    println!(
        "{:>10} | {:>12} | {:>12} | {:>12}",
        "f_sw", "SP R_out", "Dickson R_out", "soft-charged"
    );
    for f_khz in [50.0, 200.0, 1000.0, 5000.0] {
        let f = Hertz::from_kilohertz(f_khz);
        println!(
            "{:>8.0} kHz | {:>12} | {:>13} | {:>12}",
            f_khz,
            format!("{}", sp.r_out(f)),
            format!("{}", dickson.r_out(f)),
            format!("{}", soft.r_out(f)),
        );
    }
    println!(
        "\nSP corner (SSL = FSL) at {} — past it, faster switching buys nothing;\n\
         soft charging (DPMIH's per-capacitor inductors) removes the SSL term\n\
         entirely, which is why §III credits it at low frequency.",
        sp.corner_frequency()
    );

    println!("\n=== the discrete-ratio penalty ===\n");
    let model = ScConverterModel::series_parallel(48, Farads::from_microfarads(1.0), r_sw)?;
    for v_target in [1.0, 0.95, 0.9, 0.85] {
        println!(
            "  regulating the 1 V tap down to {v_target:.2} V throws away {:.0}% before any other loss",
            model.ratio_penalty(Volts::new(48.0), Volts::new(v_target)) * 100.0
        );
    }

    println!("\n=== passive sizing (DSCH output stage, 30 A) ===\n");
    let spec = RippleSpec::typical();
    for f_mhz in [0.5, 1.0, 2.0] {
        let s = size_passives(
            VrTopologyKind::Dsch,
            Volts::new(1.0),
            Amps::new(30.0),
            Hertz::from_megahertz(f_mhz),
            &spec,
        )?;
        println!(
            "  {f_mhz} MHz: L = {} per phase ({} phases), C_out = {}, embedded-L area {:.0} mm²/phase",
            s.inductance_per_phase,
            s.phases,
            s.output_capacitance,
            s.inductor_area_per_phase.as_square_millimeters()
        );
    }
    let f_for_table = frequency_for_inductance(
        VrTopologyKind::Dsch,
        Volts::new(1.0),
        Amps::new(30.0),
        Henries::from_microhenries(0.44),
        &spec,
    )?;
    println!(
        "\n  Table II's 0.44 µH/phase DSCH inductors imply f_sw ≈ {f_for_table} —\n\
         shrinking the passives to embed them is what forces the frequency up (§III)."
    );
    Ok(())
}
